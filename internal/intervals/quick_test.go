package intervals

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
)

func randJobs(seed int64, maxN int) []core.Job {
	rng := rand.New(rand.NewSource(seed))
	n := 1 + rng.Intn(maxN)
	jobs := make([]core.Job, n)
	for i := range jobs {
		s := core.Time(rng.Intn(40))
		jobs[i] = core.Job{ID: i, Release: s, Deadline: s + 1 + core.Time(rng.Intn(12)),
			Length: 0}
		jobs[i].Length = jobs[i].Deadline - jobs[i].Release
	}
	return jobs
}

// The demand profile with g=1 is exactly the mass: every active unit of
// demand is charged individually.
func TestQuickDemandProfileG1IsMass(t *testing.T) {
	f := func(seed int64) bool {
		jobs := randJobs(seed, 10)
		return NewDemandProfile(jobs, 1).Cost() == Mass(jobs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// With g at least the peak raw demand, the demand profile collapses to the
// span.
func TestQuickDemandProfileBigGIsSpan(t *testing.T) {
	f := func(seed int64) bool {
		jobs := randJobs(seed, 10)
		return NewDemandProfile(jobs, len(jobs)).Cost() == Span(jobs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// The demand profile is monotone under adding jobs and anti-monotone in g.
func TestQuickDemandProfileMonotone(t *testing.T) {
	f := func(seed int64) bool {
		jobs := randJobs(seed, 10)
		g := 1 + int(seed%3)
		if g < 1 {
			g = 1
		}
		base := NewDemandProfile(jobs, g).Cost()
		extra := append(append([]core.Job(nil), jobs...), core.Job{
			ID: len(jobs), Release: 0, Deadline: 5, Length: 5,
		})
		if NewDemandProfile(extra, g).Cost() < base {
			return false
		}
		return NewDemandProfile(jobs, g+1).Cost() <= base
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Sandwich bounds: span <= DeP <= mass, and mass/g <= DeP.
func TestQuickDemandProfileSandwich(t *testing.T) {
	f := func(seed int64) bool {
		jobs := randJobs(seed, 10)
		g := 1 + int(uint64(seed)%4)
		dep := NewDemandProfile(jobs, g).Cost()
		if dep < Span(jobs) || dep > Mass(jobs) {
			return false
		}
		return float64(dep) >= float64(Mass(jobs))/float64(g)-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// A maximum track is never longer than the span (its jobs are disjoint) and
// never shorter than the longest single job.
func TestQuickMaxTrackBounds(t *testing.T) {
	f := func(seed int64) bool {
		jobs := randJobs(seed, 10)
		_, length := MaxTrack(jobs, TieBenign)
		var longest core.Time
		for _, j := range jobs {
			if j.Length > longest {
				longest = j.Length
			}
		}
		return length >= longest && length <= Span(jobs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// ProperSubset preserves span while using a subset of the jobs with at most
// two live anywhere; ProperJobs output contains no containment pair.
func TestQuickProperInvariants(t *testing.T) {
	f := func(seed int64) bool {
		jobs := randJobs(seed, 12)
		q := ProperSubset(jobs)
		if Span(q) != Span(jobs) || MaxLiveOverlap(q) > 2 || len(q) > len(jobs) {
			return false
		}
		p := ProperJobs(jobs)
		for i := range p {
			for k := range p {
				if i == k {
					continue
				}
				if p[i].Release <= p[k].Release && p[k].Deadline <= p[i].Deadline &&
					p[i].Window() != p[k].Window() {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Interesting intervals tile the hull [min release, max deadline] exactly.
func TestQuickInterestingIntervalsTile(t *testing.T) {
	f := func(seed int64) bool {
		jobs := randJobs(seed, 10)
		iis := InterestingIntervals(jobs)
		if len(iis) == 0 {
			return len(jobs) == 0
		}
		var total core.Time
		for i, ii := range iis {
			if i > 0 && iis[i-1].Span.End != ii.Span.Start {
				return false
			}
			total += ii.Span.Len()
		}
		bounds := Boundaries(jobs)
		return total == bounds[len(bounds)-1]-bounds[0]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
