package intervals

import (
	"math/rand"
	"testing"

	"repro/internal/core"
)

func job(id int, r, d core.Time) core.Job {
	return core.Job{ID: id, Release: r, Deadline: d, Length: d - r}
}

func TestSpanAndMass(t *testing.T) {
	jobs := []core.Job{job(0, 0, 4), job(1, 2, 6), job(2, 8, 9)}
	if got := Span(jobs); got != 7 {
		t.Errorf("Span = %d, want 7", got)
	}
	if got := Mass(jobs); got != 9 {
		t.Errorf("Mass = %d, want 9", got)
	}
}

func TestInterestingIntervals(t *testing.T) {
	jobs := []core.Job{job(0, 0, 4), job(1, 2, 6), job(2, 8, 9)}
	iis := InterestingIntervals(jobs)
	// Boundaries 0,2,4,6,8,9 -> 5 interesting intervals.
	if len(iis) != 5 {
		t.Fatalf("got %d interesting intervals, want 5: %+v", len(iis), iis)
	}
	wantDemand := []int{1, 2, 1, 0, 1}
	for i, ii := range iis {
		if ii.RawDemand != wantDemand[i] {
			t.Errorf("interval %v raw demand = %d, want %d", ii.Span, ii.RawDemand, wantDemand[i])
		}
	}
}

func TestDemandProfileCost(t *testing.T) {
	// Two stacked pairs of unit jobs, g=2: demand 1 over [0,1) and [1,2).
	jobs := []core.Job{job(0, 0, 1), job(1, 0, 1), job(2, 1, 2), job(3, 1, 2), job(4, 0, 2)}
	dp := NewDemandProfile(jobs, 2)
	// Raw demand 3 on each half -> ceil(3/2)=2 per unit interval -> cost 4.
	if got := dp.Cost(); got != 4 {
		t.Errorf("DeP cost = %d, want 4", got)
	}
	if dp.MaxDemand() != 2 {
		t.Errorf("MaxDemand = %d, want 2", dp.MaxDemand())
	}
}

func TestProperJobs(t *testing.T) {
	jobs := []core.Job{job(0, 0, 10), job(1, 2, 5), job(2, 1, 11), job(3, 4, 12)}
	got := ProperJobs(jobs)
	// job1 ⊆ job0 ⊆ job2? windows: [0,10),[2,5),[1,11),[4,12).
	// [2,5) ⊆ [0,10); [0,10) ⊄ [1,11). Kept: [0,10), [1,11), [4,12).
	if len(got) != 3 {
		t.Fatalf("ProperJobs = %v, want 3 jobs", got)
	}
	for i := 1; i < len(got); i++ {
		if got[i].Release < got[i-1].Release || got[i].Deadline <= got[i-1].Deadline {
			t.Errorf("not proper-sorted: %v", got)
		}
	}
}

func TestProperSubsetProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(12)
		jobs := make([]core.Job, n)
		for i := range jobs {
			s := core.Time(rng.Intn(30))
			jobs[i] = job(i, s, s+1+core.Time(rng.Intn(10)))
		}
		q := ProperSubset(jobs)
		if Span(q) != Span(jobs) {
			t.Fatalf("trial %d: span %d != %d for %v -> %v",
				trial, Span(q), Span(jobs), jobs, q)
		}
		if MaxLiveOverlap(q) > 2 {
			t.Fatalf("trial %d: %d jobs live at once in %v", trial, MaxLiveOverlap(q), q)
		}
	}
}

func TestMaxTrackSimple(t *testing.T) {
	jobs := []core.Job{job(0, 0, 3), job(1, 2, 6), job(2, 3, 7), job(3, 7, 8)}
	track, length := MaxTrack(jobs, TieBenign)
	// Best: [0,3)+[3,7)+[7,8) = length 8.
	if length != 8 {
		t.Fatalf("track length = %d, want 8 (track %v)", length, track)
	}
	if len(track) != 3 {
		t.Errorf("track = %v, want 3 jobs", track)
	}
	for i := 1; i < len(track); i++ {
		if track[i].Release < track[i-1].Deadline {
			t.Errorf("track not disjoint: %v", track)
		}
	}
}

func TestMaxTrackEmpty(t *testing.T) {
	track, length := MaxTrack(nil, TieBenign)
	if track != nil || length != 0 {
		t.Errorf("empty MaxTrack = (%v,%d)", track, length)
	}
}

// bruteMaxTrack enumerates all subsets.
func bruteMaxTrack(jobs []core.Job) core.Time {
	n := len(jobs)
	var best core.Time
	for mask := 0; mask < 1<<n; mask++ {
		var chosen []core.Job
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				chosen = append(chosen, jobs[i])
			}
		}
		ok := true
		for i := 0; i < len(chosen) && ok; i++ {
			for k := i + 1; k < len(chosen); k++ {
				if chosen[i].Window().Overlaps(chosen[k].Window()) {
					ok = false
					break
				}
			}
		}
		if ok {
			if m := Mass(chosen); m > best {
				best = m
			}
		}
	}
	return best
}

func TestMaxTrackAgainstBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(10)
		jobs := make([]core.Job, n)
		for i := range jobs {
			s := core.Time(rng.Intn(20))
			jobs[i] = job(i, s, s+1+core.Time(rng.Intn(8)))
		}
		want := bruteMaxTrack(jobs)
		for _, tb := range []TieBreak{TieBenign, TieAdversarial} {
			track, got := MaxTrack(jobs, tb)
			if got != want {
				t.Fatalf("trial %d tb=%d: MaxTrack = %d, want %d", trial, tb, got, want)
			}
			if Mass(track) != got {
				t.Fatalf("trial %d: reported %d but track mass %d", trial, got, Mass(track))
			}
			for i := 1; i < len(track); i++ {
				if track[i].Release < track[i-1].Deadline {
					t.Fatalf("trial %d: track not disjoint: %v", trial, track)
				}
			}
		}
	}
}

func TestBoundaries(t *testing.T) {
	jobs := []core.Job{job(0, 3, 7), job(1, 0, 3)}
	got := Boundaries(jobs)
	want := []core.Time{0, 3, 7}
	if len(got) != len(want) {
		t.Fatalf("Boundaries = %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("Boundaries = %v, want %v", got, want)
		}
	}
}
