// Package repro is a from-scratch Go reproduction of
//
//	Jessica Chang, Samir Khuller, Koyel Mukherjee:
//	"LP Rounding and Combinatorial Algorithms for Minimizing Active and
//	Busy Time", SPAA 2014 (full version arXiv:1610.08154).
//
// The library implements every algorithm of the paper (minimal-feasible and
// LP-rounding active-time scheduling, GreedyTracking and the interval-job
// 2-approximation for busy time, the preemptive exact and 2-approximate
// algorithms), every substrate the paper depends on (max-flow feasibility
// oracle, a simplex LP solver, span minimization, exact baselines), every
// gadget family behind the paper's figures, and an experiment harness that
// regenerates each figure-level claim. See DESIGN.md for the inventory and
// EXPERIMENTS.md for the paper-vs-measured record.
//
// The Section-3 solve pipeline is fully incremental and scales to very
// large horizons: the simplex engine (internal/lp) is a sparse revised
// simplex whose basis lives in a factorized representation — a sparse LU
// (Markowitz-style ordering, threshold partial pivoting) maintained across
// pivots by Forrest–Tomlin updates: each basis change deletes the leaving
// column of U, appends the entering spike (captured for free during the
// entering-column FTRAN), and eliminates the resulting row bump into a
// short list of row etas, so FTRAN/BTRAN traverse only L, the updated U
// and those row etas — never a per-pivot-growing eta-file product (the
// KernelStats.EtaDotOps counter is structurally zero). A spike whose
// eliminated diagonal falls below the pivot tolerance is refused and the
// post-pivot basis refactorized from scratch (ForcedRefactors); scheduled
// folds trigger on an update-count or updated-U fill bound. The
// product-form eta file is kept as a selectable ablation
// (Problem.SetFactorization). Around the factorization sit FTRAN/BTRAN
// solves in place of every inverse product, periodic refactorization,
// native variable upper bounds, warm-started re-solves from the previous
// optimal basis (Problem.ResolveFrom, bounded dual simplex with
// Harris-style tie-broken bound flips over newly appended cuts), and
// in-place removal of slack rows (Problem.RemoveRows). Pricing is rule-selectable
// (Problem.SetPricing): the default maintains Forrest–Goldfarb dual
// steepest-edge reference weights incrementally across every pivot,
// RemoveRows and refactorization — falling back to devex max-form updates
// when the weight set goes stale — prices the primal phase from a managed
// partial candidate list instead of full column scans, and enters cold
// solves directly dual feasible (no phase-1 artificials) whenever the
// bound structure allows, which covering masters always do; the Dantzig
// baseline is kept for ablation. A warm re-solve that fails re-enters
// through a crash basis seeded from the warm basis's surviving columns
// before anything pays a full cold solve, a claim of anything but a
// verified optimum still falls back to that cold solve, and the exact
// rational engine warm-starts the same way (ResolveExactFrom). The
// max-flow substrate (internal/flow) supports Reset/SetCapacity plus
// flow-preserving re-capacitation (SetCapacityKeepFlow/PushBack) so
// separation and feasibility networks are built once, and the Benders
// separation oracle carries its max flow across rounds: capacity decreases
// are repaired locally along the bipartite network's length-3 paths and
// Dinic augments only the difference. The cut generation in
// internal/activetime rides all of it: each round's single max-flow probe
// yields the global minimum cut plus per-deficient-job Hall violators —
// the per-job residual reachability walks fan out across goroutines on the
// settled flow, their harvest replayed in deterministic serial order so
// parallelism is invisible in the output — the per-round cut cap adapts to
// the horizon, and a cut registry tracks age and slack per cut — by complementary slackness, slack tracking is
// dual-activity tracking — purging persistently slack rows from the live
// master between rounds. The dense-inverse predecessor needed ~90 s for
// the T = 4096 scaling family and could not reach T = 16384 at all; the
// factorized, steepest-edge pipeline solves the former in well under a
// second of simplex work and now carries T = 16384 at the paper's
// canonical n = T/8 density — previously beyond a 50-minute budget —
// inside the CI scaling job (see ROADMAP for the measured record). One
// solver state, one separation network, and one feasibility checker per
// call are reused across every cut round, every rounding repair probe, and
// every exact branch-and-bound node. See the package comments of
// internal/lp and internal/flow for the exact warm-start, removal, reuse
// and pricing contracts, and experiments E17/E18 for the measured scaling
// records.
//
// The post-LP layer — rounding, minimal-feasible and the Theorem 1
// certificate — scales to the same horizons as the solver. The
// feasibility checker behind MinimalFeasible, IsMinimalFeasible, RoundLP's
// repair loop and the exact search is flow-carrying: one max flow survives
// every slot/job toggle (closing a flow-carrying slot cancels its length-3
// source→job→slot→sink paths and Dinic reroutes only the difference;
// zero-flow slots close for free), so a full closing sweep over T slots
// runs exactly one from-zero max flow — the ColdFlows counter that the
// scaling tests and the benchmark trajectory gate, deliberately instead of
// wall time. RoundLP's segment sweep accumulates slot mass with
// compensated (Kahan) summation and snaps against a scale-aware tolerance
// yEps·sqrt(T) (the solver's own per-entry noise grows like sqrt(T); a
// fixed epsilon misrounds integral parts at T = 32768), shared by the
// right-shift, the charging ledger and the certificate arithmetic, and
// reports per-phase timings plus the mass it could not place anywhere
// (DroppedMass, gated ≈ 0). Experiment E19 is the approximation-gap
// dashboard: every generator family × horizons up to 32768, LP value vs
// rounded vs minimal-feasible cost vs exact optimum where reachable
// (branch and bound at small T, the polynomial unit-job solver at every T),
// with every row re-asserting the Theorem 1/2 bounds and the
// incremental-flow contract; paperbench folds its digest into the
// committed, gate-checked BENCH_TRAJECTORY.json.
//
// Above the one-shot solvers sits a live-instance delta layer:
// activetime.Session keeps a solved LP1 master, its factorized basis, the
// cut registry and the separation network alive between solves, and
// patches all four in place as the instance changes. Session.AddJobs
// splices arrivals into the live master — new slot columns enter through
// lp.Problem.AddColumns (priced into the existing basis, no
// refactorization), new seed rows and separation-network arcs are
// appended, and the batch is validated against a prospective clone first
// so an infeasible arrival is rejected atomically. Session.RemoveJobs
// drops departures the same way: the registry's stored witnesses name
// exactly the rows touching a departed job, lp.Problem.RemoveRows excises
// them from the live state when their slacks are basic, and the
// separation network detaches the jobs flow-preservingly
// (SetCapacityKeepFlow plus length-3-path PushBack cancellation) instead
// of being rebuilt; when a departed row is tight in the basis the removal
// falls back to a counted master rebuild (SessionStats.ColdRebuilds).
// Nothing in this layer may fail silently: a warm re-solve that abandons
// its basis is counted and its verdict recorded
// (LPResult.ColdFallbacks/FallbackVerdicts — the canonical scaling gates
// and the benchmark trajectory pin the count at zero), and the
// delta-vs-cold metamorphic suite plus FuzzInstanceDelta hold every
// patched re-solve to the cold optimum within 1e-6 across all generator
// families. Experiment E20 records the dividend — a small arrival batch
// at T = 4096 re-solves ≥ 5× cheaper in pivots than solving cold — and
// cmd/activeserve serves the whole layer over HTTP: per-tenant sessions
// behind context-aware locks, concurrent mutations coalesced into one
// batched re-solve per tenant (single-flight), results cached across
// tenants by instance fingerprint, per-request deadlines with typed
// overload/deadline/infeasible errors, and /metrics counters that surface
// every fallback and rebuild.
package repro
