// Package repro is a from-scratch Go reproduction of
//
//	Jessica Chang, Samir Khuller, Koyel Mukherjee:
//	"LP Rounding and Combinatorial Algorithms for Minimizing Active and
//	Busy Time", SPAA 2014 (full version arXiv:1610.08154).
//
// The library implements every algorithm of the paper (minimal-feasible and
// LP-rounding active-time scheduling, GreedyTracking and the interval-job
// 2-approximation for busy time, the preemptive exact and 2-approximate
// algorithms), every substrate the paper depends on (max-flow feasibility
// oracle, a simplex LP solver, span minimization, exact baselines), every
// gadget family behind the paper's figures, and an experiment harness that
// regenerates each figure-level claim. See DESIGN.md for the inventory and
// EXPERIMENTS.md for the paper-vs-measured record.
//
// The Section-3 solve pipeline is fully incremental and scales to large
// horizons: the simplex engine (internal/lp) is a sparse revised simplex —
// constraint rows in compressed sparse form, an explicit basis inverse,
// native variable upper bounds, and warm-started re-solves from the
// previous optimal basis (Problem.ResolveFrom, bounded dual simplex with
// batched bound flips over newly appended cuts; a warm claim of anything
// but a verified optimum falls back to a cold solve). The max-flow
// substrate (internal/flow) supports Reset/SetCapacity so separation and
// feasibility networks are built once and only re-capacitated between
// queries. The Benders cut generation in internal/activetime rides both
// and batches separation: each round's single max-flow probe yields the
// global minimum cut plus per-deficient-job Hall violators (deduplicated
// against the master), which is what carries LP1 past T ≈ 1000 slots —
// the dense single-cut pipeline failed outright there. One solver state,
// one separation network, and one feasibility checker per call are reused
// across every cut round, every rounding repair probe, and every exact
// branch-and-bound node. See the package comments of internal/lp and
// internal/flow for the exact warm-start and reuse contracts, and
// experiment E17 for the measured scaling record.
package repro
