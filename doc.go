// Package repro is a from-scratch Go reproduction of
//
//	Jessica Chang, Samir Khuller, Koyel Mukherjee:
//	"LP Rounding and Combinatorial Algorithms for Minimizing Active and
//	Busy Time", SPAA 2014 (full version arXiv:1610.08154).
//
// The library implements every algorithm of the paper (minimal-feasible and
// LP-rounding active-time scheduling, GreedyTracking and the interval-job
// 2-approximation for busy time, the preemptive exact and 2-approximate
// algorithms), every substrate the paper depends on (max-flow feasibility
// oracle, a simplex LP solver, span minimization, exact baselines), every
// gadget family behind the paper's figures, and an experiment harness that
// regenerates each figure-level claim. See DESIGN.md for the inventory and
// EXPERIMENTS.md for the paper-vs-measured record.
//
// The Section-3 solve pipeline is fully incremental: the simplex engine
// (internal/lp) supports native variable upper bounds and warm-started
// re-solves from the previous optimal basis (Problem.ResolveFrom, dual
// simplex over newly appended cuts), and the max-flow substrate
// (internal/flow) supports Reset/SetCapacity so separation and feasibility
// networks are built once and only re-capacitated between queries. The
// Benders cut generation in internal/activetime rides both: one tableau and
// one flow network per SolveLP call, re-used across every cut round. See
// the package comments of internal/lp and internal/flow for the exact
// warm-start and reuse contracts.
package repro
